//! Property-based tests: every randomly generated loop must schedule to a
//! valid modulo schedule on every machine shape, and core invariants of the
//! substrate crates must hold for arbitrary inputs.

use ddg::lifetime::{LifetimeInterval, Pressure};
use ddg::ValueId;
use loopgen::{synthetic, SyntheticParams};
use mirs::{MirsScheduler, SchedulerOptions};
use proptest::prelude::*;
use vliw::{ClusterConfig, MachineConfig};

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Any synthetic loop schedules to a validated schedule on any paper
    /// machine shape, and the achieved II never beats the MII.
    #[test]
    fn random_loops_schedule_and_validate(
        seed in 0u64..1000,
        arith in 3usize..20,
        streams in 1usize..5,
        recurrences in 0usize..2,
        clusters_pow in 0u32..3,
        regs_idx in 0usize..3,
    ) {
        let params = SyntheticParams {
            arith_ops: arith,
            input_streams: streams,
            output_stores: 1,
            invariants: 1,
            recurrences,
            ..SyntheticParams::default()
        };
        let lp = synthetic::generate(&params, seed);
        let k = 1u32 << clusters_pow;
        let regs = [16u32, 32, 64][regs_idx];
        let machine = MachineConfig::builder()
            .identical_clusters(k, ClusterConfig::new(8 / k, 4 / k, regs))
            .buses(2)
            .build()
            .unwrap();
        let lat = machine.latencies();
        let bounds = ddg::mii::mii(&lp.graph, lat, 8, 4);
        let result = MirsScheduler::new(&machine, SchedulerOptions::default())
            .schedule(&lp)
            .expect("synthetic loops always converge under MIRS-C");
        prop_assert!(result.ii >= bounds.mii());
        prop_assert!(result.validate(&machine).is_ok());
        prop_assert!(result.memory_traffic as usize >= lp.memory_ops());
    }

    /// Folding lifetimes modulo the II never undercounts: MaxLive is at
    /// least the number of registers any single lifetime needs, and the sum
    /// over kernel cycles equals the total covered cycles.
    #[test]
    fn pressure_folding_is_consistent(
        intervals in proptest::collection::vec((0i64..200, 0i64..60), 1..20),
        ii in 1u32..40,
    ) {
        let ivs: Vec<LifetimeInterval> = intervals
            .iter()
            .enumerate()
            .map(|(i, &(start, len))| LifetimeInterval { value: ValueId(i as u32), start, end: start + len })
            .collect();
        let p = Pressure::compute(ivs.iter(), ii, 0);
        let max_single = ivs.iter().map(|iv| iv.registers(ii)).max().unwrap_or(0);
        prop_assert!(p.max_live() >= max_single);
        let total_cells: i64 = p.per_cycle().iter().map(|&c| i64::from(c)).sum();
        let total_covered: i64 = ivs.iter().map(LifetimeInterval::len).sum();
        prop_assert_eq!(total_cells, total_covered);
        prop_assert!(p.critical_cycle() < ii);
    }

    /// Unrolling multiplies body size and divides the trip count.
    #[test]
    fn unrolling_scales_structurally(seed in 0u64..200, factor in 1u32..5) {
        let lp = synthetic::generate(&SyntheticParams::small(), seed);
        let unrolled = ddg::unroll::unroll(&lp, factor);
        prop_assert_eq!(unrolled.body_size(), lp.body_size() * factor as usize);
        prop_assert_eq!(unrolled.trip_count, lp.trip_count / u64::from(factor));
        prop_assert_eq!(
            unrolled.graph.edge_count(),
            lp.graph.edge_count() * factor as usize
        );
    }

    /// The HRMS ordering is always a permutation of the nodes.
    #[test]
    fn hrms_order_is_a_permutation(seed in 0u64..300, recurrences in 0usize..3) {
        let params = SyntheticParams { recurrences, ..SyntheticParams::default() };
        let lp = synthetic::generate(&params, seed);
        let order = ddg::hrms::hrms_order(&lp.graph, &vliw::LatencyModel::default());
        prop_assert_eq!(order.len(), lp.graph.node_count());
        let mut sorted = order.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), order.len());
    }
}
