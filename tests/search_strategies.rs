//! Pins the II-search layer's contracts:
//!
//! * the default `Linear` strategy is *bit-identical* to the pre-search
//!   scheduler — the golden workbench hashes recorded before the refactor
//!   must reproduce exactly, explicit-`Linear` and default options must
//!   agree loop by loop;
//! * the branching strategies (`Backtracking`, `PerturbedRestart`) never
//!   return a worse `(II, spill-ops)` pair than `Linear` on the 60-loop
//!   workbench — they always include `Linear`'s canonical attempts in
//!   their candidate set — and `Backtracking` strictly improves at least
//!   one loop on the restart-heavy 4-cluster configuration;
//! * every strategy is deterministic (same loop, same machine, same hash)
//!   and records its metadata in `ScheduleResult::search`;
//! * the branch-parallel `Backtracking` path (`SearchConfig::branch_jobs >
//!   1`, fanned across a `harness::sweep::BranchPool`) is byte-identical
//!   to the serial search for any worker count — including when the outer
//!   workbench sweep already saturates the machine's cores.

use harness::sweep::BranchPool;
use loopgen::{Workbench, WorkbenchParams};
use mirs::{
    MirsScheduler, SchedScratch, ScheduleResult, SchedulerOptions, SearchConfig, SearchProof,
    SearchStrategyKind,
};
use proptest::prelude::*;
use vliw::MachineConfig;

/// Recorded from the seed (pre-flat-MRT) scheduler and unchanged ever
/// since; the search layer must keep reproducing them through `Linear`
/// (same constants as `tests/schedule_hash.rs`).
const GOLDEN_1X64: u64 = 0xe16d_bd67_223a_565e;
const GOLDEN_2X32: u64 = 0xda8c_f0c2_9b3e_3938;

fn workbench(loops: usize) -> Workbench {
    Workbench::generate(&WorkbenchParams {
        loops,
        ..WorkbenchParams::default()
    })
}

fn schedule(
    machine: &MachineConfig,
    lp: &ddg::Loop,
    search: SearchConfig,
    scratch: &mut SchedScratch,
) -> ScheduleResult {
    let opts = SchedulerOptions::default().with_search(search);
    MirsScheduler::new(machine, opts)
        .schedule_with(lp, scratch)
        .expect("workbench loops converge")
}

fn spill_ops(r: &ScheduleResult) -> u32 {
    r.stats.spill_stores + r.stats.spill_loads
}

#[test]
fn linear_reproduces_every_golden_schedule_hash() {
    let wb = workbench(10);
    let mut scratch = SchedScratch::new();
    for (machine, golden) in [
        (MachineConfig::paper_config(1, 64).unwrap(), GOLDEN_1X64),
        (MachineConfig::paper_config(2, 32).unwrap(), GOLDEN_2X32),
    ] {
        let mut combined: u64 = 0xcbf2_9ce4_8422_2325;
        for lp in wb.loops() {
            let explicit = schedule(&machine, lp, SearchConfig::linear(), &mut scratch);
            let default = MirsScheduler::new(&machine, SchedulerOptions::default())
                .schedule(lp)
                .expect("workbench loops converge");
            assert_eq!(
                explicit.schedule_hash(),
                default.schedule_hash(),
                "{}: explicit Linear must equal the default options on {}",
                machine.name(),
                lp.name
            );
            assert_eq!(explicit.search.strategy, SearchStrategyKind::Linear);
            assert_eq!(
                explicit.search.attempts,
                explicit.stats.restarts + 1,
                "linear search makes exactly one attempt per II"
            );
            assert_eq!(explicit.search.candidates, 1);
            combined = combined
                .rotate_left(7)
                .wrapping_mul(0x0000_0100_0000_01b3)
                .wrapping_add(explicit.schedule_hash());
        }
        assert_eq!(
            combined,
            golden,
            "{}: Linear diverged from the golden hashes: got {combined:#018x}",
            machine.name()
        );
    }
}

/// `Backtracking` and `PerturbedRestart` dominate `Linear` loop-by-loop on
/// the paper's `(II, spill-ops)` order, and `Backtracking` strictly
/// improves at least one loop on the 4-cluster configuration (that is the
/// configuration whose restarts the multi-II search was built for).
#[test]
fn branching_strategies_never_lose_to_linear_on_the_60_loop_workbench() {
    let wb = workbench(60);
    let mut scratch = SchedScratch::new();
    let mut bt_improved_on_4x16 = 0usize;
    for (k, regs) in [(2u32, 32u32), (4, 16)] {
        let machine = MachineConfig::paper_config(k, regs).unwrap();
        for lp in wb.loops() {
            let lin = schedule(&machine, lp, SearchConfig::linear(), &mut scratch);
            let lin_key = (lin.ii, spill_ops(&lin));
            for cfg in [SearchConfig::backtracking(), SearchConfig::perturbed()] {
                let r = schedule(&machine, lp, cfg, &mut scratch);
                r.validate(&machine).expect("explored schedules validate");
                let key = (r.ii, spill_ops(&r));
                assert!(
                    key <= lin_key,
                    "{}/{}: {} returned (II {}, spills {}) worse than Linear's \
                     (II {}, spills {})",
                    machine.name(),
                    lp.name,
                    cfg.strategy,
                    key.0,
                    key.1,
                    lin_key.0,
                    lin_key.1
                );
                assert_eq!(r.search.strategy, cfg.strategy);
                assert!(r.search.attempts >= lin.search.attempts.min(2));
                if cfg.strategy == SearchStrategyKind::Backtracking && k == 4 && key < lin_key {
                    bt_improved_on_4x16 += 1;
                }
            }
        }
    }
    assert!(
        bt_improved_on_4x16 > 0,
        "Backtracking should strictly improve (II, spill-ops) on at least one \
         4-cluster loop"
    );
}

#[test]
fn every_strategy_is_deterministic() {
    let wb = workbench(8);
    let machine = MachineConfig::paper_config(4, 16).unwrap();
    let mut scratch = SchedScratch::new();
    for cfg in [
        SearchConfig::linear(),
        SearchConfig::backtracking(),
        SearchConfig::perturbed(),
        SearchConfig::exact(),
    ] {
        for lp in wb.loops() {
            let a = schedule(&machine, lp, cfg, &mut scratch);
            let b = schedule(&machine, lp, cfg, &mut SchedScratch::new());
            assert_eq!(
                a.schedule_hash(),
                b.schedule_hash(),
                "{}: {} must be deterministic (scratch reuse included)",
                lp.name,
                cfg.strategy
            );
            assert_eq!(a.search, b.search);
        }
    }
}

/// Schedule with an explicit branch-job count, routing through a
/// [`BranchPool`] exactly as the harness runners do (`branch_jobs <= 1`
/// and non-`Backtracking` strategies take the serial in-process path).
fn schedule_jobs(
    machine: &MachineConfig,
    lp: &ddg::Loop,
    search: SearchConfig,
    branch_jobs: u32,
    scratch: &mut SchedScratch,
) -> ScheduleResult {
    let search = search.with_branch_jobs(branch_jobs);
    let opts = SchedulerOptions::default().with_search(search);
    let sched = MirsScheduler::new(machine, opts);
    match BranchPool::for_search(&search) {
        Some(pool) => sched.schedule_with_exec(lp, scratch, &pool),
        None => sched.schedule_with(lp, scratch),
    }
    .expect("workbench loops converge")
}

/// Everything observable about the search outcome that must not depend on
/// the branch-job count.
fn outcome_fingerprint(r: &ScheduleResult) -> (u64, u32, u32, u32, u32, mirs::SearchMeta) {
    (
        r.schedule_hash(),
        r.ii,
        r.stats.restarts,
        spill_ops(r),
        r.stats.moves,
        r.search,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// The relaxation admission filter only skips candidate IIs it *proves*
    /// infeasible, so `MIRS_PRUNE` on/off must produce byte-identical
    /// schedules for every strategy, machine and salvage setting. The
    /// attempt counters legitimately differ — a pruned II never runs, so
    /// it is excluded from `attempts` — but for the linear climb they
    /// reconcile exactly: `attempts(on) + pruned_iis(on) = attempts(off)`.
    #[test]
    fn prune_on_and_off_are_byte_identical(
        seed in 0u64..400,
        loops in 3usize..7,
    ) {
        let wb = Workbench::generate(&WorkbenchParams {
            loops,
            seed,
            ..WorkbenchParams::default()
        });
        let mut scratch = SchedScratch::new();
        for (k, regs) in [(1u32, 64u32), (4, 16)] {
            let machine = MachineConfig::paper_config(k, regs).unwrap();
            for base in [
                SearchConfig::linear(),
                SearchConfig::backtracking(),
                SearchConfig::perturbed(),
                SearchConfig::exact(),
                SearchConfig::linear().with_salvage(true),
                SearchConfig::backtracking().with_salvage(true),
            ] {
                for lp in wb.loops() {
                    let on = schedule(&machine, lp, base.with_prune(true), &mut scratch);
                    let off = schedule(&machine, lp, base.with_prune(false), &mut scratch);
                    prop_assert_eq!(off.search.pruned_iis, 0, "filter off must prune nothing");
                    prop_assert_eq!(
                        (on.schedule_hash(), on.ii, on.mii, spill_ops(&on), on.stats.moves,
                         on.search.candidates, on.search.salvaged_ops, on.search.replaced_ops,
                         on.search.proof),
                        (off.schedule_hash(), off.ii, off.mii, spill_ops(&off), off.stats.moves,
                         off.search.candidates, off.search.salvaged_ops, off.search.replaced_ops,
                         off.search.proof),
                        "{}/{}/{} salvage={}: pruning changed the search outcome",
                        machine.name(), lp.name, base.strategy, base.salvage
                    );
                    if base.strategy == SearchStrategyKind::Linear {
                        prop_assert_eq!(
                            on.search.attempts + on.search.pruned_iis,
                            off.search.attempts,
                            "{}/{}: linear attempts must reconcile with the pruned count",
                            machine.name(), lp.name
                        );
                    }
                }
            }
        }
    }

    /// `MIRS_BRANCH_JOBS=1` and `=4` produce byte-identical schedules and
    /// identical `SearchMeta` on randomized workbenches, for every
    /// strategy. For `Backtracking` this crosses three implementations:
    /// the serial incremental driver (`branch_jobs = 1`), the group-merge
    /// driver run inline (`branch_jobs = 4` through the default executor)
    /// and the group-merge driver fanned across a real thread pool.
    #[test]
    fn branch_jobs_one_and_four_are_byte_identical(
        seed in 0u64..400,
        loops in 3usize..7,
        clusters_pow in 1u32..3,
    ) {
        let wb = Workbench::generate(&WorkbenchParams {
            loops,
            seed,
            ..WorkbenchParams::default()
        });
        let k = 1u32 << clusters_pow;
        let machine = MachineConfig::paper_config(k, 64 / k).unwrap();
        let mut scratch = SchedScratch::new();
        for cfg in [
            SearchConfig::linear(),
            SearchConfig::backtracking(),
            SearchConfig::perturbed(),
        ] {
            for lp in wb.loops() {
                let serial = schedule_jobs(&machine, lp, cfg, 1, &mut scratch);
                let fanned = schedule_jobs(&machine, lp, cfg, 4, &mut scratch);
                prop_assert_eq!(
                    outcome_fingerprint(&serial),
                    outcome_fingerprint(&fanned),
                    "{}/{}: branch_jobs=4 diverged from serial", cfg.strategy, lp.name
                );
                // Inline group-merge driver (no pool): also identical.
                let opts = SchedulerOptions::default()
                    .with_search(cfg.with_branch_jobs(4));
                let inline = MirsScheduler::new(&machine, opts)
                    .schedule_with(lp, &mut scratch)
                    .expect("workbench loops converge");
                prop_assert_eq!(
                    outcome_fingerprint(&serial),
                    outcome_fingerprint(&inline),
                    "{}/{}: inline branch groups diverged from serial", cfg.strategy, lp.name
                );
            }
        }
    }
}

/// A branch pool opened while the *outer* workbench sweep already
/// saturates every core must neither deadlock nor change results: the
/// nested pools clamp themselves to the free cores (degrading to in-thread
/// runs) and the merge order is deterministic either way.
#[test]
fn nested_branch_pools_under_a_saturated_outer_sweep_match_serial() {
    use harness::runner::{run_workbench_opts, SchedulerKind};
    use harness::sweep::SweepExecutor;
    use mirs::PrefetchPolicy;

    let wb = workbench(16);
    let machine = MachineConfig::paper_config(4, 16).unwrap();
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // More outer workers than cores: every branch pool is opened from a
    // worker of an already-oversubscribed sweep.
    let outer = SweepExecutor::new(cores * 2).with_chunk(1);
    let fanned = run_workbench_opts(
        &outer,
        &wb,
        &machine,
        SchedulerKind::MirsC,
        PrefetchPolicy::HitLatency,
        SearchConfig::backtracking().with_branch_jobs(4),
    );
    let serial = run_workbench_opts(
        &SweepExecutor::serial(),
        &wb,
        &machine,
        SchedulerKind::MirsC,
        PrefetchPolicy::HitLatency,
        SearchConfig::backtracking(),
    );
    assert_eq!(serial.outcomes.len(), fanned.outcomes.len());
    for (a, b) in serial.outcomes.iter().zip(&fanned.outcomes) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.ii, b.ii, "II of {}", a.name);
        let ha = a.result.as_ref().map(outcome_fingerprint);
        let hb = b.result.as_ref().map(outcome_fingerprint);
        assert_eq!(ha, hb, "fingerprint of {}", a.name);
    }
}

/// Giving up must agree across the serial and branch-parallel drivers: an
/// unreachable `max_ii` yields `NotConverged` (never a hang, never a
/// bogus schedule) on both paths.
#[test]
fn branch_parallel_not_converged_matches_serial() {
    let wb = workbench(4);
    let machine = MachineConfig::paper_config(4, 16).unwrap();
    let mut scratch = SchedScratch::new();
    for lp in wb.loops() {
        for branch_jobs in [1u32, 4] {
            let mut opts = SchedulerOptions::default()
                .with_search(SearchConfig::backtracking().with_branch_jobs(branch_jobs));
            opts.max_ii = 0; // below any feasible II
            let sched = MirsScheduler::new(&machine, opts);
            let pool = BranchPool::new(branch_jobs as usize);
            let err = sched
                .schedule_with_exec(lp, &mut scratch, &pool)
                .expect_err("max_ii 0 cannot converge");
            assert!(
                matches!(err, mirs::ScheduleError::NotConverged { .. }),
                "{}: branch_jobs={branch_jobs} returned {err:?}",
                lp.name
            );
        }
    }
}

/// `Exact` is the backtracking climb with a certification phase in front:
/// at the converged II the schedules are byte-identical (the cache's
/// tier-3 metric-tie refinement depends on this), and the result carries a
/// non-heuristic [`SearchProof`] whose bound never exceeds the achieved II
/// — the soundness contract of the relaxation.
#[test]
fn exact_matches_backtracking_and_stamps_a_sound_proof() {
    let wb = workbench(12);
    let mut scratch = SchedScratch::new();
    for (k, regs) in [(1u32, 64u32), (4, 16)] {
        let machine = MachineConfig::paper_config(k, regs).unwrap();
        for lp in wb.loops() {
            let bt = schedule(&machine, lp, SearchConfig::backtracking(), &mut scratch);
            let ex = schedule(&machine, lp, SearchConfig::exact(), &mut scratch);
            assert_eq!(ex.search.strategy, SearchStrategyKind::Exact);
            assert_eq!(
                ex.schedule_hash(),
                bt.schedule_hash(),
                "{}/{}: the exact climb must reproduce backtracking's schedule",
                machine.name(),
                lp.name
            );
            // Heuristic results carry no proof; exact always certifies.
            assert_eq!(bt.search.proof, SearchProof::Heuristic);
            assert!(bt.certified_lower_bound().is_none());
            assert_ne!(ex.search.proof, SearchProof::Heuristic);
            let lb = ex.certified_lower_bound().expect("exact always certifies");
            assert!(
                lb <= ex.ii && lb <= bt.ii,
                "{}/{}: certified bound {} exceeds an achieved II ({} exact, {} backtrack)",
                machine.name(),
                lp.name,
                lb,
                ex.ii,
                bt.ii
            );
            if ex.search.proof.is_optimal() {
                assert_eq!(lb, ex.ii, "optimal means the achieved II is the bound");
            }
        }
    }
}

/// A zero certification budget cannot decide anything: the proof degrades
/// to `BudgetExhausted` at the MII — never a fabricated `Optimal`.
#[test]
fn zero_exact_budget_degrades_the_proof_honestly() {
    let wb = workbench(4);
    let machine = MachineConfig::paper_config(2, 32).unwrap();
    let mut scratch = SchedScratch::new();
    for lp in wb.loops() {
        let r = schedule(
            &machine,
            lp,
            SearchConfig::exact().with_exact_budget(0),
            &mut scratch,
        );
        match r.search.proof {
            // With no budget the certifier stops at the MII undecided; the
            // climb can still *achieve* the MII, which proves optimality
            // without spending certification work.
            SearchProof::Optimal => assert_eq!(r.ii, r.mii),
            SearchProof::BudgetExhausted(lb) => assert!(lb <= r.ii),
            other => panic!("{}: unexpected proof {other}", lp.name),
        }
    }
}

/// The admission filter earns its keep on the pinned register-tight hard
/// cases: the linear climb there grinds through several relaxation-provably
/// infeasible IIs, so the filter must (a) leave every schedule
/// byte-identical, (b) prune at least one II on most cases, and (c) stay
/// sound — the pruned set is the contiguous prefix `[mii, mii+pruned)` of
/// the climb, and every member must sit strictly below the exact oracle's
/// certified lower bound (all hard cases are within the ≤12-op certifiable
/// slice).
#[test]
fn admission_filter_prunes_hard_cases_soundly() {
    let mut scratch = SchedScratch::new();
    let mut cases_with_pruning = 0usize;
    let cases = loopgen::hard_cases();
    for lp in &cases {
        let machine = if lp.name.contains("clustered") {
            MachineConfig::paper_config(2, 8).unwrap()
        } else {
            MachineConfig::paper_config(1, 8).unwrap()
        };
        let on = schedule(&machine, lp, SearchConfig::linear(), &mut scratch);
        let off = schedule(
            &machine,
            lp,
            SearchConfig::linear().with_prune(false),
            &mut scratch,
        );
        assert_eq!(
            on.schedule_hash(),
            off.schedule_hash(),
            "{}: pruning changed the schedule",
            lp.name
        );
        assert_eq!(off.search.pruned_iis, 0);
        assert_eq!(
            on.search.attempts + on.search.pruned_iis,
            off.search.attempts,
            "{}: pruned IIs must account exactly for the skipped attempts",
            lp.name
        );
        if on.search.pruned_iis > 0 {
            cases_with_pruning += 1;
        }
        // Soundness: the pruned prefix is [mii, mii + pruned), so its
        // largest member is mii + pruned - 1; the certified bound must sit
        // at or above mii + pruned (every pruned II is proven infeasible,
        // and the oracle proves at least as much as the relaxation).
        let ex = schedule(&machine, lp, SearchConfig::exact(), &mut scratch);
        let lb = ex.certified_lower_bound().expect("exact always certifies");
        assert!(
            on.mii + on.search.pruned_iis <= lb,
            "{}: pruned II {} is not below the certified bound {}",
            lp.name,
            on.mii + on.search.pruned_iis - 1,
            lb
        );
    }
    assert!(
        cases_with_pruning >= 3,
        "the filter should fire on at least 3 of the {} hard cases (got {})",
        cases.len(),
        cases_with_pruning
    );
}

/// The spill memo is an accelerator, never a behaviour change; its counters
/// surface through the result stats so hit rates are observable (also via
/// `MIRS_DEBUG` prints in the driver).
#[test]
fn spill_memo_counters_are_exposed_and_active_under_pressure() {
    let wb = workbench(20);
    let machine = MachineConfig::paper_config(4, 16).unwrap();
    let mut scratch = SchedScratch::new();
    let mut total_hits = 0u64;
    for lp in wb.loops() {
        let r = schedule(&machine, lp, SearchConfig::linear(), &mut scratch);
        total_hits += r.stats.spill_memo_hits;
    }
    assert!(
        total_hits > 0,
        "the 4x16 workbench spills; some candidate evaluations must hit the memo"
    );
}
