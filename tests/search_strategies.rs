//! Pins the II-search layer's contracts:
//!
//! * the default `Linear` strategy is *bit-identical* to the pre-search
//!   scheduler — the golden workbench hashes recorded before the refactor
//!   must reproduce exactly, explicit-`Linear` and default options must
//!   agree loop by loop;
//! * the branching strategies (`Backtracking`, `PerturbedRestart`) never
//!   return a worse `(II, spill-ops)` pair than `Linear` on the 60-loop
//!   workbench — they always include `Linear`'s canonical attempts in
//!   their candidate set — and `Backtracking` strictly improves at least
//!   one loop on the restart-heavy 4-cluster configuration;
//! * every strategy is deterministic (same loop, same machine, same hash)
//!   and records its metadata in `ScheduleResult::search`.

use loopgen::{Workbench, WorkbenchParams};
use mirs::{
    MirsScheduler, SchedScratch, ScheduleResult, SchedulerOptions, SearchConfig, SearchStrategyKind,
};
use vliw::MachineConfig;

/// Recorded from the seed (pre-flat-MRT) scheduler and unchanged ever
/// since; the search layer must keep reproducing them through `Linear`
/// (same constants as `tests/schedule_hash.rs`).
const GOLDEN_1X64: u64 = 0xe16d_bd67_223a_565e;
const GOLDEN_2X32: u64 = 0xda8c_f0c2_9b3e_3938;

fn workbench(loops: usize) -> Workbench {
    Workbench::generate(&WorkbenchParams {
        loops,
        ..WorkbenchParams::default()
    })
}

fn schedule(
    machine: &MachineConfig,
    lp: &ddg::Loop,
    search: SearchConfig,
    scratch: &mut SchedScratch,
) -> ScheduleResult {
    let opts = SchedulerOptions::default().with_search(search);
    MirsScheduler::new(machine, opts)
        .schedule_with(lp, scratch)
        .expect("workbench loops converge")
}

fn spill_ops(r: &ScheduleResult) -> u32 {
    r.stats.spill_stores + r.stats.spill_loads
}

#[test]
fn linear_reproduces_every_golden_schedule_hash() {
    let wb = workbench(10);
    let mut scratch = SchedScratch::new();
    for (machine, golden) in [
        (MachineConfig::paper_config(1, 64).unwrap(), GOLDEN_1X64),
        (MachineConfig::paper_config(2, 32).unwrap(), GOLDEN_2X32),
    ] {
        let mut combined: u64 = 0xcbf2_9ce4_8422_2325;
        for lp in wb.loops() {
            let explicit = schedule(&machine, lp, SearchConfig::linear(), &mut scratch);
            let default = MirsScheduler::new(&machine, SchedulerOptions::default())
                .schedule(lp)
                .expect("workbench loops converge");
            assert_eq!(
                explicit.schedule_hash(),
                default.schedule_hash(),
                "{}: explicit Linear must equal the default options on {}",
                machine.name(),
                lp.name
            );
            assert_eq!(explicit.search.strategy, SearchStrategyKind::Linear);
            assert_eq!(
                explicit.search.attempts,
                explicit.stats.restarts + 1,
                "linear search makes exactly one attempt per II"
            );
            assert_eq!(explicit.search.candidates, 1);
            combined = combined
                .rotate_left(7)
                .wrapping_mul(0x0000_0100_0000_01b3)
                .wrapping_add(explicit.schedule_hash());
        }
        assert_eq!(
            combined,
            golden,
            "{}: Linear diverged from the golden hashes: got {combined:#018x}",
            machine.name()
        );
    }
}

/// `Backtracking` and `PerturbedRestart` dominate `Linear` loop-by-loop on
/// the paper's `(II, spill-ops)` order, and `Backtracking` strictly
/// improves at least one loop on the 4-cluster configuration (that is the
/// configuration whose restarts the multi-II search was built for).
#[test]
fn branching_strategies_never_lose_to_linear_on_the_60_loop_workbench() {
    let wb = workbench(60);
    let mut scratch = SchedScratch::new();
    let mut bt_improved_on_4x16 = 0usize;
    for (k, regs) in [(2u32, 32u32), (4, 16)] {
        let machine = MachineConfig::paper_config(k, regs).unwrap();
        for lp in wb.loops() {
            let lin = schedule(&machine, lp, SearchConfig::linear(), &mut scratch);
            let lin_key = (lin.ii, spill_ops(&lin));
            for cfg in [SearchConfig::backtracking(), SearchConfig::perturbed()] {
                let r = schedule(&machine, lp, cfg, &mut scratch);
                r.validate(&machine).expect("explored schedules validate");
                let key = (r.ii, spill_ops(&r));
                assert!(
                    key <= lin_key,
                    "{}/{}: {} returned (II {}, spills {}) worse than Linear's \
                     (II {}, spills {})",
                    machine.name(),
                    lp.name,
                    cfg.strategy,
                    key.0,
                    key.1,
                    lin_key.0,
                    lin_key.1
                );
                assert_eq!(r.search.strategy, cfg.strategy);
                assert!(r.search.attempts >= lin.search.attempts.min(2));
                if cfg.strategy == SearchStrategyKind::Backtracking && k == 4 && key < lin_key {
                    bt_improved_on_4x16 += 1;
                }
            }
        }
    }
    assert!(
        bt_improved_on_4x16 > 0,
        "Backtracking should strictly improve (II, spill-ops) on at least one \
         4-cluster loop"
    );
}

#[test]
fn every_strategy_is_deterministic() {
    let wb = workbench(8);
    let machine = MachineConfig::paper_config(4, 16).unwrap();
    let mut scratch = SchedScratch::new();
    for cfg in [
        SearchConfig::linear(),
        SearchConfig::backtracking(),
        SearchConfig::perturbed(),
    ] {
        for lp in wb.loops() {
            let a = schedule(&machine, lp, cfg, &mut scratch);
            let b = schedule(&machine, lp, cfg, &mut SchedScratch::new());
            assert_eq!(
                a.schedule_hash(),
                b.schedule_hash(),
                "{}: {} must be deterministic (scratch reuse included)",
                lp.name,
                cfg.strategy
            );
            assert_eq!(a.search, b.search);
        }
    }
}

/// The spill memo is an accelerator, never a behaviour change; its counters
/// surface through the result stats so hit rates are observable (also via
/// `MIRS_DEBUG` prints in the driver).
#[test]
fn spill_memo_counters_are_exposed_and_active_under_pressure() {
    let wb = workbench(20);
    let machine = MachineConfig::paper_config(4, 16).unwrap();
    let mut scratch = SchedScratch::new();
    let mut total_hits = 0u64;
    for lp in wb.loops() {
        let r = schedule(&machine, lp, SearchConfig::linear(), &mut scratch);
        total_hits += r.stats.spill_memo_hits;
    }
    assert!(
        total_hits > 0,
        "the 4x16 workbench spills; some candidate evaluations must hit the memo"
    );
}
