//! Persistent schedule-cache behaviour, end to end: dominance-ordered
//! refinement across search strategies, warm-pass replay that reproduces
//! the uncached golden hashes byte-identically, and graceful degradation
//! on corrupt entries.

use harness::cache::{cache_key, strategy_tier, ScheduleCache, StoreOutcome};
use harness::runner::run_workbench_opts;
use harness::service::{run_workbench_cached, Provenance, ScheduleRequest, ScheduleService};
use harness::{SchedulerKind, SweepExecutor};
use loopgen::{Workbench, WorkbenchParams};
use mirs::{MirsScheduler, PrefetchPolicy, SchedulerOptions, SearchConfig, SearchStrategyKind};
use vliw::MachineConfig;

fn tmp_cache(tag: &str) -> ScheduleCache {
    let dir = std::env::temp_dir().join(format!("mirs-cache-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    ScheduleCache::at(dir)
}

fn small_wb(loops: usize) -> Workbench {
    Workbench::generate(&WorkbenchParams {
        loops,
        ..WorkbenchParams::default()
    })
}

/// On the register-starved 4x16 configuration, a Backtracking run refines
/// every Linear entry in place (its results are never worse on the
/// `(II, spill-ops, moves)` metric, so the dominance rule always lets the
/// higher tier through), after which Backtracking requests hit too.
#[test]
fn backtracking_upgrades_linear_entries() {
    let cache = tmp_cache("upgrade");
    let wb = small_wb(8);
    let machine = MachineConfig::paper_config(4, 16).unwrap();
    let linear = SearchConfig::default();
    let backtrack = SearchConfig::backtracking();

    for lp in wb.loops() {
        let key = cache_key(
            lp,
            &machine,
            SchedulerKind::MirsC,
            PrefetchPolicy::HitLatency,
            &linear,
        );
        // Same key for both strategies: that is what makes refinement work.
        assert_eq!(
            key,
            cache_key(
                lp,
                &machine,
                SchedulerKind::MirsC,
                PrefetchPolicy::HitLatency,
                &backtrack,
            )
        );
        let lr = MirsScheduler::new(&machine, SchedulerOptions::default().with_search(linear))
            .schedule(lp)
            .expect("linear converges");
        assert_eq!(cache.store(key, &lr), StoreOutcome::Inserted);
        // The linear entry serves linear but not backtracking requests.
        assert!(cache.lookup(key, SearchStrategyKind::Linear).is_some());
        assert!(cache
            .lookup(key, SearchStrategyKind::Backtracking)
            .is_none());

        let br = MirsScheduler::new(&machine, SchedulerOptions::default().with_search(backtrack))
            .schedule(lp)
            .expect("backtracking converges");
        assert_eq!(
            cache.store(key, &br),
            StoreOutcome::Refined,
            "{}: backtracking must upgrade the linear entry",
            lp.name
        );
        // Now everyone is served, from the backtracking entry.
        let served = cache.lookup(key, SearchStrategyKind::Backtracking).unwrap();
        assert_eq!(served.schedule_hash(), br.schedule_hash());
        let served_linear = cache.lookup(key, SearchStrategyKind::Linear).unwrap();
        assert_eq!(
            strategy_tier(served_linear.search.strategy),
            strategy_tier(SearchStrategyKind::Backtracking)
        );

        // And the (possibly worse, never better) linear result can no
        // longer downgrade the entry.
        assert_eq!(cache.store(key, &lr), StoreOutcome::Kept);
    }
}

/// The exact tier sits on top of the ladder: an exact pass refines cached
/// backtracking entries in place (it reproduces backtracking's schedule,
/// so the metric ties and the higher tier wins), after which one entry —
/// now carrying its optimality proof — serves every strategy warm.
#[test]
fn exact_refines_backtrack_entries_and_serves_the_whole_ladder() {
    let cache = tmp_cache("exact-tier");
    let wb = small_wb(6);
    let machine = MachineConfig::paper_config(4, 16).unwrap();
    let backtrack = SearchConfig::backtracking();
    let exact = SearchConfig::exact();

    for lp in wb.loops() {
        let key = cache_key(
            lp,
            &machine,
            SchedulerKind::MirsC,
            PrefetchPolicy::HitLatency,
            &backtrack,
        );
        // The certification budget is not part of the key either.
        assert_eq!(
            key,
            cache_key(
                lp,
                &machine,
                SchedulerKind::MirsC,
                PrefetchPolicy::HitLatency,
                &exact.with_exact_budget(17),
            )
        );
        let br = MirsScheduler::new(&machine, SchedulerOptions::default().with_search(backtrack))
            .schedule(lp)
            .expect("backtracking converges");
        assert_eq!(cache.store(key, &br), StoreOutcome::Inserted);
        // A backtrack entry does not serve exact requests...
        assert!(cache.lookup(key, SearchStrategyKind::Exact).is_none());

        let er = MirsScheduler::new(&machine, SchedulerOptions::default().with_search(exact))
            .schedule(lp)
            .expect("exact converges");
        assert_eq!(
            er.schedule_hash(),
            br.schedule_hash(),
            "{}: the exact climb must tie backtracking's schedule",
            lp.name
        );
        assert_eq!(
            cache.store(key, &er),
            StoreOutcome::Refined,
            "{}: exact must upgrade the backtrack entry in place",
            lp.name
        );
        // ...but the refined entry serves the whole ladder, proof intact.
        for requested in SearchStrategyKind::ALL {
            let served = cache.lookup(key, requested).unwrap();
            assert_eq!(served.search.strategy, SearchStrategyKind::Exact);
            assert_eq!(served.schedule_hash(), er.schedule_hash());
            assert!(
                served.certified_lower_bound().is_some(),
                "{}: the proof must survive the cache round trip",
                lp.name
            );
        }
        // Neither heuristic can downgrade the certified entry.
        assert_eq!(cache.store(key, &br), StoreOutcome::Kept);
    }
}

/// A warm second workbench pass is 100% hits, performs zero scheduling
/// attempts and reproduces every schedule hash of an uncached reference
/// run byte-identically — the headline acceptance criterion.
#[test]
fn warm_pass_replays_golden_hashes_without_scheduling() {
    let cache = tmp_cache("warm");
    let wb = small_wb(12);
    let exec = SweepExecutor::new(2);
    let search = SearchConfig::default();
    for machine in [
        MachineConfig::paper_config(1, 64).unwrap(),
        MachineConfig::paper_config(2, 32).unwrap(),
    ] {
        let reference = run_workbench_opts(
            &exec,
            &wb,
            &machine,
            SchedulerKind::MirsC,
            PrefetchPolicy::HitLatency,
            search,
        );
        let (_, cold_prov) = run_workbench_cached(
            &exec,
            &cache,
            &wb,
            &machine,
            SchedulerKind::MirsC,
            PrefetchPolicy::HitLatency,
            search,
        );
        assert!(cold_prov.iter().all(|p| *p == Provenance::Fresh));
        let (warm, warm_prov) = run_workbench_cached(
            &exec,
            &cache,
            &wb,
            &machine,
            SchedulerKind::MirsC,
            PrefetchPolicy::HitLatency,
            search,
        );
        assert!(
            warm_prov.iter().all(|p| *p == Provenance::Hit),
            "{}: warm pass must be all hits",
            machine.name()
        );
        for (r, w) in reference.outcomes.iter().zip(&warm.outcomes) {
            assert_eq!(
                r.result.as_ref().unwrap().schedule_hash(),
                w.result.as_ref().unwrap().schedule_hash(),
                "{}/{}: cached replay diverged from the uncached run",
                machine.name(),
                r.name
            );
            assert_eq!(
                w.scheduling_seconds, 0.0,
                "a hit must not spend scheduling time"
            );
        }
    }
    let stats = cache.stats();
    assert_eq!(stats.refines, 0);
    assert_eq!(stats.corrupt, 0);
    assert_eq!(stats.hits, stats.inserts, "every insert was replayed once");
}

/// Corrupting entries on disk degrades the next pass to fresh scheduling
/// with identical results — never an error, and the cache heals itself.
#[test]
fn corrupt_entries_degrade_to_fresh_identical_schedules() {
    let cache = tmp_cache("heal");
    let wb = small_wb(6);
    let exec = SweepExecutor::new(1);
    let search = SearchConfig::default();
    let machine = MachineConfig::paper_config(2, 32).unwrap();
    let (cold, _) = run_workbench_cached(
        &exec,
        &cache,
        &wb,
        &machine,
        SchedulerKind::MirsC,
        PrefetchPolicy::HitLatency,
        search,
    );

    // Vandalise every entry a different way.
    let dir = cache.dir().unwrap().to_path_buf();
    for (i, entry) in std::fs::read_dir(&dir).unwrap().enumerate() {
        let path = entry.unwrap().path();
        match i % 3 {
            0 => std::fs::write(&path, b"garbage").unwrap(),
            1 => {
                let blob = std::fs::read(&path).unwrap();
                std::fs::write(&path, &blob[..blob.len() / 3]).unwrap();
            }
            _ => {
                let mut blob = std::fs::read(&path).unwrap();
                let mid = blob.len() / 2;
                blob[mid] ^= 0x55;
                std::fs::write(&path, &blob).unwrap();
            }
        }
    }

    let (healed, prov) = run_workbench_cached(
        &exec,
        &cache,
        &wb,
        &machine,
        SchedulerKind::MirsC,
        PrefetchPolicy::HitLatency,
        search,
    );
    assert!(
        prov.iter().all(|p| *p == Provenance::Fresh),
        "corrupt entries must fall through to fresh scheduling"
    );
    assert_eq!(cache.stats().corrupt as usize, wb.loops().len());
    for (c, h) in cold.outcomes.iter().zip(&healed.outcomes) {
        assert_eq!(
            c.result.as_ref().unwrap().schedule_hash(),
            h.result.as_ref().unwrap().schedule_hash(),
            "{}: degraded rerun diverged",
            c.name
        );
    }
    // The healing pass re-populated the cache: third pass is all hits.
    let (_, prov) = run_workbench_cached(
        &exec,
        &cache,
        &wb,
        &machine,
        SchedulerKind::MirsC,
        PrefetchPolicy::HitLatency,
        search,
    );
    assert!(prov.iter().all(|p| *p == Provenance::Hit));
}

/// The service answers mixed batches — several machine configurations,
/// duplicate requests — with correct provenance and the same schedules the
/// plain runner produces.
#[test]
fn service_batches_mix_configs_and_dedup() {
    let cache = tmp_cache("batch");
    let wb = small_wb(4);
    let exec = SweepExecutor::new(2);
    let search = SearchConfig::default();
    let m1 = MachineConfig::paper_config(1, 64).unwrap();
    let m2 = MachineConfig::paper_config(2, 32).unwrap();
    let mut requests = Vec::new();
    for machine in [&m1, &m2] {
        for lp in wb.loops() {
            requests.push(ScheduleRequest::mirs(lp, machine, search));
        }
    }
    // Duplicate the whole m1 block within the same batch.
    for lp in wb.loops() {
        requests.push(ScheduleRequest::mirs(lp, &m1, search));
    }
    let responses = ScheduleService::new(&cache, &exec).serve(&requests);
    let n = wb.loops().len();
    assert!(responses[..2 * n]
        .iter()
        .all(|r| r.provenance == Provenance::Fresh));
    assert!(responses[2 * n..]
        .iter()
        .all(|r| r.provenance == Provenance::Shared));
    for (dup, orig) in responses[2 * n..].iter().zip(&responses[..n]) {
        assert_eq!(
            dup.outcome.result.as_ref().unwrap().schedule_hash(),
            orig.outcome.result.as_ref().unwrap().schedule_hash()
        );
    }
    // Per-config reference runs agree with the batch.
    for (machine, chunk) in [(&m1, &responses[..n]), (&m2, &responses[n..2 * n])] {
        let reference = run_workbench_opts(
            &exec,
            &wb,
            machine,
            SchedulerKind::MirsC,
            PrefetchPolicy::HitLatency,
            search,
        );
        for (r, resp) in reference.outcomes.iter().zip(chunk) {
            assert_eq!(
                r.result.as_ref().unwrap().schedule_hash(),
                resp.outcome.result.as_ref().unwrap().schedule_hash()
            );
        }
    }
}
