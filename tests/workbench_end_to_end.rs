//! Cross-crate integration tests: workload generation → scheduling
//! (MIRS-C and baseline) → validation → memory simulation.

use harness::{run_workbench, SchedulerKind};
use loopgen::{Workbench, WorkbenchParams};
use memsim::{simulate, MemoryParams};
use mirs::PrefetchPolicy;
use vliw::{HwModel, MachineConfig};

fn workbench() -> Workbench {
    Workbench::generate(&WorkbenchParams {
        loops: 10,
        ..Default::default()
    })
}

#[test]
fn mirs_schedules_and_validates_the_whole_workbench_on_every_paper_config() {
    let wb = workbench();
    for k in [1u32, 2, 4] {
        let machine = MachineConfig::paper_config(k, 64 / k).unwrap();
        let summary = run_workbench(
            &wb,
            &machine,
            SchedulerKind::MirsC,
            PrefetchPolicy::HitLatency,
        );
        assert_eq!(summary.not_converged(), 0, "k={k}");
        for o in &summary.outcomes {
            let r = o.result.as_ref().unwrap();
            r.validate(&machine)
                .unwrap_or_else(|e| panic!("{} on k={k}: {e}", o.name));
            assert!(o.ii.unwrap() >= o.mii, "{}: II below MII", o.name);
        }
    }
}

#[test]
fn clustering_costs_cycles_but_wins_execution_time() {
    let wb = workbench();
    let hw = HwModel::default();
    let mut cycles = Vec::new();
    let mut times = Vec::new();
    for k in [1u32, 2, 4] {
        let machine = MachineConfig::paper_config(k, 64 / k).unwrap();
        let summary = run_workbench(
            &wb,
            &machine,
            SchedulerKind::MirsC,
            PrefetchPolicy::HitLatency,
        );
        let c = summary.weighted_execution_cycles();
        cycles.push(c);
        times.push(c * hw.cycle_time_ps(&machine));
    }
    // Cycles do not improve with clustering (the unified machine is an upper
    // bound on flexibility)...
    assert!(cycles[1] >= cycles[0] * 0.99);
    assert!(cycles[2] >= cycles[0] * 0.99);
    // ...but execution time does, thanks to the shorter cycle time.
    assert!(times[2] < times[0], "4 clusters must beat unified on time");
}

#[test]
fn baseline_and_mirs_agree_on_easy_loops_and_diverge_under_pressure() {
    let wb = workbench();
    let unbounded = MachineConfig::paper_config_unbounded(2).unwrap();
    let m = run_workbench(
        &wb,
        &unbounded,
        SchedulerKind::MirsC,
        PrefetchPolicy::HitLatency,
    );
    let b = run_workbench(
        &wb,
        &unbounded,
        SchedulerKind::Baseline,
        PrefetchPolicy::HitLatency,
    );
    for (mo, bo) in m.outcomes.iter().zip(&b.outcomes) {
        if let (Some(mi), Some(bi)) = (mo.ii, bo.ii) {
            assert!(
                mi <= bi,
                "{}: MIRS-C must not lose with unbounded registers",
                mo.name
            );
        }
    }
    // Under register constraints MIRS-C keeps converging.
    let constrained = MachineConfig::paper_config(4, 16).unwrap();
    let mc = run_workbench(
        &wb,
        &constrained,
        SchedulerKind::MirsC,
        PrefetchPolicy::HitLatency,
    );
    assert_eq!(mc.not_converged(), 0);
    let bc = run_workbench(
        &wb,
        &constrained,
        SchedulerKind::Baseline,
        PrefetchPolicy::HitLatency,
    );
    assert!(bc.not_converged() >= mc.not_converged());
}

#[test]
fn memory_simulation_runs_on_every_scheduled_loop() {
    let wb = workbench();
    let machine = MachineConfig::paper_config(2, 64).unwrap();
    let hw = HwModel::default();
    let summary = run_workbench(
        &wb,
        &machine,
        SchedulerKind::MirsC,
        PrefetchPolicy::HitLatency,
    );
    let params = MemoryParams {
        cycle_time_ps: hw.cycle_time_ps(&machine),
        ..MemoryParams::default()
    };
    for o in &summary.outcomes {
        let out = simulate(o.result.as_ref().unwrap(), o.trip_count, &params);
        assert_eq!(out.useful_cycles, o.execution_cycles());
        assert!(out.total_cycles() >= out.useful_cycles);
    }
}

#[test]
fn prefetching_never_increases_memory_traffic() {
    let wb = workbench();
    let machine = MachineConfig::paper_config(2, 64).unwrap();
    let normal = run_workbench(
        &wb,
        &machine,
        SchedulerKind::MirsC,
        PrefetchPolicy::HitLatency,
    );
    let pf = run_workbench(
        &wb,
        &machine,
        SchedulerKind::MirsC,
        PrefetchPolicy::SelectiveBinding { min_trip_count: 16 },
    );
    for (n, p) in normal.outcomes.iter().zip(&pf.outcomes) {
        // Binding prefetching adds register pressure, which may add spill
        // traffic on tight register files, but never on a 64-register one
        // for this workbench; the original memory accesses are identical.
        assert!(p.memory_traffic <= n.memory_traffic + 4, "{}", n.name);
    }
}
