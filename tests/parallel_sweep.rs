//! Determinism of the parallel sweep engine: a workbench run sharded
//! across any number of workers must be **byte-identical** to a serial
//! run — same `LoopOutcome` vectors, same `schedule_hash`es, for random
//! workbenches and machine shapes.
//!
//! Together with the golden schedule-hash tests (which pin the absolute
//! hashes) this is the contract that lets `MIRS_JOBS` default to all cores
//! without the experiment outputs ever depending on thread interleaving.

use harness::runner::{run_sweep, run_workbench_with, SweepJob, WorkbenchSummary};
use harness::sweep::{SweepError, SweepExecutor};
use harness::SchedulerKind;
use loopgen::{Workbench, WorkbenchParams};
use mirs::PrefetchPolicy;
use proptest::prelude::*;
use vliw::MachineConfig;

/// Everything about two summaries must match except wall-clock timings.
fn assert_identical(a: &WorkbenchSummary, b: &WorkbenchSummary, label: &str) {
    assert_eq!(a.config, b.config, "{label}: config");
    assert_eq!(a.outcomes.len(), b.outcomes.len(), "{label}: loop count");
    for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(oa.name, ob.name, "{label}: loop order");
        assert_eq!(oa.ii, ob.ii, "{label}: II of {}", oa.name);
        assert_eq!(oa.mii, ob.mii, "{label}: MII of {}", oa.name);
        assert_eq!(
            oa.memory_traffic, ob.memory_traffic,
            "{label}: traffic of {}",
            oa.name
        );
        assert_eq!(oa.moves, ob.moves, "{label}: moves of {}", oa.name);
        assert_eq!(
            oa.trip_count, ob.trip_count,
            "{label}: trip count of {}",
            oa.name
        );
        let ha = oa.result.as_ref().map(|r| r.schedule_hash());
        let hb = ob.result.as_ref().map(|r| r.schedule_hash());
        assert_eq!(ha, hb, "{label}: schedule hash of {}", oa.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    /// `run_workbench` with 1, 2 and N threads — at several task-claim
    /// chunk sizes — yields identical outcome vectors and identical
    /// schedule hashes on randomized workbenches. Chunked claiming and
    /// per-worker scratch reuse are scheduling-granularity decisions only;
    /// neither may leak into the results.
    #[test]
    fn workbench_outcomes_are_identical_for_any_worker_count_and_chunk(
        seed in 0u64..500,
        loops in 4usize..9,
        clusters_pow in 0u32..3,
        regs_idx in 0usize..3,
    ) {
        let wb = Workbench::generate(&WorkbenchParams {
            loops,
            seed,
            ..WorkbenchParams::default()
        });
        let k = 1u32 << clusters_pow;
        let regs = [16u32, 32, 64][regs_idx];
        let machine = MachineConfig::paper_config(k, regs).unwrap();
        let run = |jobs: usize, chunk: usize| {
            run_workbench_with(
                &SweepExecutor::new(jobs).with_chunk(chunk),
                &wb,
                &machine,
                SchedulerKind::MirsC,
                PrefetchPolicy::HitLatency,
            )
        };
        let serial = run(1, 1);
        for (jobs, chunk) in [(1, 8), (2, 1), (2, 8), (8, 3), (8, 64)] {
            let parallel = run(jobs, chunk);
            assert_identical(&serial, &parallel, &format!("{jobs} workers, chunk {chunk}"));
        }
    }
}

/// A flattened multi-config sweep equals per-config serial runs, job by job.
#[test]
fn run_sweep_matches_per_config_serial_runs() {
    let wb = Workbench::generate(&WorkbenchParams {
        loops: 6,
        ..WorkbenchParams::default()
    });
    let jobs = vec![
        SweepJob::mirs(MachineConfig::paper_config(1, 64).unwrap()),
        SweepJob::baseline(MachineConfig::paper_config(1, 64).unwrap()),
        SweepJob::mirs(MachineConfig::paper_config(2, 32).unwrap()),
        SweepJob::mirs(MachineConfig::paper_config(4, 16).unwrap()),
    ];
    let parallel = run_sweep(&SweepExecutor::new(4), &wb, &jobs);
    assert_eq!(parallel.len(), jobs.len());
    let serial = SweepExecutor::serial();
    for (job, got) in jobs.iter().zip(&parallel) {
        let want = run_workbench_with(&serial, &wb, &job.machine, job.scheduler, job.prefetch);
        assert_eq!(got.scheduler, job.scheduler);
        assert_identical(&want, got, &job.machine.name());
    }
}

/// A panicking scheduling task surfaces as `SweepError::WorkerPanicked`
/// with the lost loop's index — never a hang, never a silent partial
/// result vector.
#[test]
fn scheduling_worker_panic_is_surfaced_as_error() {
    let wb = Workbench::generate(&WorkbenchParams {
        loops: 8,
        ..WorkbenchParams::default()
    });
    let machine = MachineConfig::paper_config(2, 32).unwrap();
    let exec = SweepExecutor::new(4);
    let out = exec.try_run(wb.loops(), |i, lp| {
        assert!(i != 3, "synthetic failure on loop 3");
        harness::runner::schedule_loop(
            lp,
            &machine,
            SchedulerKind::MirsC,
            PrefetchPolicy::HitLatency,
        )
    });
    match out {
        Err(SweepError::WorkerPanicked { lost_tasks }) => {
            assert_eq!(lost_tasks, vec![3]);
        }
        other => panic!("expected WorkerPanicked, got {:?}", other.map(|v| v.len())),
    }
}

/// `MIRS_JOBS`-driven and explicit executors agree on the workbench.
#[test]
fn from_env_executor_is_deterministic_too() {
    let wb = Workbench::generate(&WorkbenchParams {
        loops: 5,
        ..WorkbenchParams::default()
    });
    let machine = MachineConfig::paper_config(2, 32).unwrap();
    let via_env = run_workbench_with(
        &SweepExecutor::from_env(),
        &wb,
        &machine,
        SchedulerKind::MirsC,
        PrefetchPolicy::HitLatency,
    );
    let serial = run_workbench_with(
        &SweepExecutor::serial(),
        &wb,
        &machine,
        SchedulerKind::MirsC,
        PrefetchPolicy::HitLatency,
    );
    assert_identical(&serial, &via_env, "from_env");
}
