//! Warm-start restart salvage (`SearchConfig::salvage`) invariants:
//!
//! * a salvaged search's accepted schedule passes the same structural
//!   oracle as a cold one — `ScheduleResult::validate` recounts the modulo
//!   reservation tables from the placements, re-checks every dependence
//!   slack, operand locality and the register fit (and in debug builds the
//!   scheduler additionally compares the incrementally rebuilt pressure
//!   gauges against a from-scratch lifetime recomputation after every
//!   survivor re-fold);
//! * the cold-fallback guarantee: with salvage on, every loop converges at
//!   an II no larger than the salvage-off search's — a failed warm probe
//!   is always followed by an ordinary cold attempt at the same II;
//! * salvage is deterministic and observable (`SearchMeta::salvaged_ops` /
//!   `replaced_ops`), and with salvage off both counters are zero and the
//!   schedules stay byte-identical to the defaults.

use loopgen::{synthetic, SyntheticParams, Workbench, WorkbenchParams};
use mirs::{MirsScheduler, SchedScratch, ScheduleResult, SchedulerOptions, SearchConfig};
use proptest::prelude::*;
use vliw::MachineConfig;

fn schedule(
    machine: &MachineConfig,
    lp: &ddg::Loop,
    search: SearchConfig,
    scratch: &mut SchedScratch,
) -> ScheduleResult {
    let opts = SchedulerOptions::default().with_search(search);
    MirsScheduler::new(machine, opts)
        .schedule_with(lp, scratch)
        .expect("workbench loops converge")
}

/// Salvage never converges at a larger II than the cold search, its
/// schedules validate, and the counters only move when salvage is on —
/// across every search strategy on the restart-heavy 4-cluster machine
/// plus the 2-cluster paper configuration.
#[test]
fn salvage_converges_no_worse_than_cold_on_the_workbench() {
    let wb = Workbench::generate(&WorkbenchParams {
        loops: 40,
        ..WorkbenchParams::default()
    });
    let mut scratch = SchedScratch::new();
    let mut warm_probes_hit = 0u64;
    for (k, regs) in [(2u32, 32u32), (4, 16)] {
        let machine = MachineConfig::paper_config(k, regs).unwrap();
        for cfg in [
            SearchConfig::linear(),
            SearchConfig::backtracking(),
            SearchConfig::perturbed(),
        ] {
            for lp in wb.loops() {
                let cold = schedule(&machine, lp, cfg, &mut scratch);
                if let Err(err) = cold.validate(&machine) {
                    panic!(
                        "{}/{}: cold schedule fails the structural oracle: {err:?} \
                         (regression guard: removing a move must cascade to moves \
                         chained onto its copy)",
                        machine.name(),
                        lp.name
                    );
                }
                assert_eq!(
                    (cold.search.salvaged_ops, cold.search.replaced_ops),
                    (0, 0),
                    "{}/{}: salvage-off runs must report zero salvage counters",
                    machine.name(),
                    lp.name
                );
                let warm = schedule(&machine, lp, cfg.with_salvage(true), &mut scratch);
                if let Err(err) = warm.validate(&machine) {
                    panic!(
                        "{}/{}: salvaged schedule fails the structural oracle: {err:?}",
                        machine.name(),
                        lp.name
                    );
                }
                assert!(
                    warm.ii <= cold.ii,
                    "{}/{}: {} converged at II {} warm-started but II {} cold — \
                     the cold fallback guarantee is broken",
                    machine.name(),
                    lp.name,
                    cfg.strategy,
                    warm.ii,
                    cold.ii
                );
                warm_probes_hit += u64::from(warm.search.salvaged_ops);
            }
        }
    }
    assert!(
        warm_probes_hit > 0,
        "the clustered workbench restarts; some warm probe must salvage placements"
    );
}

/// Salvage off is the byte-identical default: explicitly disabling it
/// changes nothing about the schedules (the golden-hash tests pin the
/// default; this pins that `with_salvage(false)` *is* the default).
#[test]
fn salvage_off_is_byte_identical_to_the_default() {
    let wb = Workbench::generate(&WorkbenchParams {
        loops: 12,
        ..WorkbenchParams::default()
    });
    let machine = MachineConfig::paper_config(4, 16).unwrap();
    let mut scratch = SchedScratch::new();
    for lp in wb.loops() {
        let default = schedule(&machine, lp, SearchConfig::linear(), &mut scratch);
        let off = schedule(
            &machine,
            lp,
            SearchConfig::linear().with_salvage(false),
            &mut scratch,
        );
        assert_eq!(default.schedule_hash(), off.schedule_hash(), "{}", lp.name);
        assert_eq!(default.search, off.search, "{}", lp.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Random loops on random machine shapes: the salvaged search always
    /// produces a validated schedule at an II no worse than the cold one,
    /// for both the linear climb and the branching exploration, and the
    /// warm path is deterministic (scratch reuse included).
    #[test]
    fn random_loops_salvage_validates_and_never_loses(
        seed in 0u64..500,
        arith in 3usize..18,
        streams in 1usize..4,
        recurrences in 0usize..2,
        clusters_pow in 0u32..3,
        backtracking_sel in 0u32..2,
    ) {
        let params = SyntheticParams {
            arith_ops: arith,
            input_streams: streams,
            output_stores: 1,
            invariants: 1,
            recurrences,
            ..SyntheticParams::default()
        };
        let lp = synthetic::generate(&params, seed);
        let k = 1u32 << clusters_pow;
        let machine = MachineConfig::paper_config(k, 64 / k).unwrap();
        let cfg = if backtracking_sel == 1 {
            SearchConfig::backtracking()
        } else {
            SearchConfig::linear()
        };
        let mut scratch = SchedScratch::new();
        let cold = schedule(&machine, &lp, cfg, &mut scratch);
        let warm = schedule(&machine, &lp, cfg.with_salvage(true), &mut scratch);
        prop_assert!(warm.validate(&machine).is_ok());
        prop_assert!(warm.ii >= cold.mii);
        prop_assert!(
            warm.ii <= cold.ii,
            "{}: warm II {} exceeds cold II {}", lp.name, warm.ii, cold.ii
        );
        prop_assert!(warm.memory_traffic as usize >= lp.memory_ops());
        let again = schedule(&machine, &lp, cfg.with_salvage(true), &mut SchedScratch::new());
        prop_assert_eq!(warm.schedule_hash(), again.schedule_hash());
        prop_assert_eq!(warm.search, again.search);
    }
}
