//! Soundness of the exact branch-and-bound certifier.
//!
//! The one property that must never break: the certified lower bound is a
//! true bound — **no** converged heuristic schedule, under any strategy on
//! any machine shape, may achieve an II below it. The bound relaxes the
//! problem (aggregate resource pools, residue decomposition, no register
//! pressure), so the relaxation's feasible region must contain every real
//! schedule; a heuristic beating the bound means the relaxation dropped a
//! constraint it must keep.
//!
//! Budget handling rides along: exhaustion must degrade the proof honestly
//! (`BudgetExhausted`, never a fabricated `Optimal`), and the proof
//! stamping must distinguish heuristic results from certified ones.

use loopgen::{hard_cases, synthetic, SyntheticParams};
use mirs::{
    MirsScheduler, ScheduleResult, SchedulerOptions, SearchConfig, SearchProof, SearchStrategyKind,
};
use proptest::prelude::*;
use vliw::MachineConfig;

fn schedule(
    machine: &MachineConfig,
    lp: &ddg::Loop,
    search: SearchConfig,
) -> Option<ScheduleResult> {
    MirsScheduler::new(machine, SchedulerOptions::default().with_search(search))
        .schedule(lp)
        .ok()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// On random synthetic loops, every converged heuristic II is at least
    /// the certified lower bound, on clustered and unclustered shapes with
    /// tight and roomy register files alike.
    #[test]
    fn certified_bound_never_exceeds_any_converged_heuristic(
        seed in 0u64..500,
        arith in 3usize..12,
        streams in 1usize..3,
        recurrences in 0usize..3,
        rec_distance in 1u32..3,
        long_idx in 0usize..3,
        clusters_pow in 0u32..2,
        regs_idx in 0usize..3,
    ) {
        let params = SyntheticParams {
            arith_ops: arith,
            input_streams: streams,
            output_stores: 1,
            invariants: 1,
            long_latency_fraction: [0.0, 0.3, 0.7][long_idx],
            recurrences,
            recurrence_distance: rec_distance,
            ..SyntheticParams::default()
        };
        let lp = synthetic::generate(&params, seed);
        let k = 1u32 << clusters_pow;
        let regs = [8u32, 16, 64][regs_idx];
        let machine = MachineConfig::paper_config(k, regs).unwrap();
        // A modest budget keeps debug builds fast; an undecided probe just
        // weakens the bound, never unsoundly strengthens it.
        let exact = schedule(&machine, &lp, SearchConfig::exact().with_exact_budget(5_000));
        let Some(exact) = exact else { return; };
        let lb = exact.certified_lower_bound().expect("exact always certifies");
        prop_assert!(lb >= exact.mii, "the bound can only refine the MII upward");
        prop_assert!(
            lb <= exact.ii,
            "{}: exact converged at II {} below its own bound {}", lp.name, exact.ii, lb
        );
        for cfg in [SearchConfig::linear(), SearchConfig::backtracking(), SearchConfig::perturbed()] {
            if let Some(r) = schedule(&machine, &lp, cfg) {
                prop_assert!(
                    r.ii >= lb,
                    "{}: {} converged at II {} below the certified bound {}",
                    lp.name, cfg.strategy, r.ii, lb
                );
                prop_assert_eq!(r.search.proof, SearchProof::Heuristic);
            }
        }
    }

    /// Exact scheduling is deterministic, bound and proof included.
    #[test]
    fn exact_is_deterministic_with_its_proof(seed in 0u64..200) {
        let lp = synthetic::generate(&SyntheticParams::small(), seed);
        let machine = MachineConfig::paper_config(2, 32).unwrap();
        let a = schedule(&machine, &lp, SearchConfig::exact());
        let b = schedule(&machine, &lp, SearchConfig::exact());
        match (a, b) {
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.schedule_hash(), b.schedule_hash());
                prop_assert_eq!(a.search, b.search);
                prop_assert_eq!(a.search.strategy, SearchStrategyKind::Exact);
            }
            (None, None) => {}
            _ => prop_assert!(false, "convergence itself must be deterministic"),
        }
    }
}

/// The pinned hard cases stay sound: the heuristics may sit above the
/// certified bound (that is what makes them hard), never below it.
#[test]
fn hard_cases_keep_their_certified_bounds_sound() {
    for lp in hard_cases() {
        for (k, regs) in [(1u32, 8u32), (2, 8), (1, 64)] {
            let machine = MachineConfig::paper_config(k, regs).unwrap();
            let Some(exact) = schedule(&machine, &lp, SearchConfig::exact()) else {
                continue;
            };
            let lb = exact
                .certified_lower_bound()
                .expect("exact always certifies");
            for cfg in [SearchConfig::linear(), SearchConfig::backtracking()] {
                if let Some(r) = schedule(&machine, &lp, cfg) {
                    assert!(
                        r.ii >= lb,
                        "{}/{}: {} II {} below certified bound {}",
                        machine.name(),
                        lp.name,
                        cfg.strategy,
                        r.ii,
                        lb
                    );
                }
            }
        }
    }
}
