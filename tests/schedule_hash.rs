//! Pins the exact schedules MIRS-C produces on a reference workbench.
//!
//! [`ScheduleResult::schedule_hash`] digests the II, every placement and the
//! inserted spill/move counts into one stable FNV-1a value. The constants
//! below were recorded from the pre-flat-MRT scheduler; any change to the
//! resource bookkeeping or the incremental pressure gauges that alters even
//! one placement shows up here as a hash mismatch. This is the determinism
//! guarantee behind performance refactors of the scheduling loop: the flat
//! modulo reservation table must be a pure speedup, not a behaviour change.

use loopgen::{Workbench, WorkbenchParams};
use mirs::{MirsScheduler, SchedulerOptions};
use vliw::MachineConfig;

fn workbench() -> Workbench {
    Workbench::generate(&WorkbenchParams {
        loops: 10,
        ..WorkbenchParams::default()
    })
}

/// Combine the per-loop hashes of a full workbench run into one value.
fn workbench_hash(machine: &MachineConfig) -> u64 {
    let wb = workbench();
    let sched = MirsScheduler::new(machine, SchedulerOptions::default());
    let mut combined: u64 = 0xcbf2_9ce4_8422_2325;
    for lp in wb.loops() {
        let r = sched.schedule(lp).expect("reference workbench converges");
        r.validate(machine).expect("schedule validates");
        combined = combined
            .rotate_left(7)
            .wrapping_mul(0x0000_0100_0000_01b3)
            .wrapping_add(r.schedule_hash());
    }
    combined
}

#[test]
fn schedules_are_reproducible_on_the_unified_machine() {
    let machine = MachineConfig::paper_config(1, 64).unwrap();
    let h = workbench_hash(&machine);
    assert_eq!(
        h, GOLDEN_1X64,
        "1-(GP8M4-REG64) schedules changed: got {h:#018x}"
    );
}

#[test]
fn schedules_are_reproducible_on_the_clustered_machine() {
    let machine = MachineConfig::paper_config(2, 32).unwrap();
    let h = workbench_hash(&machine);
    assert_eq!(
        h, GOLDEN_2X32,
        "2-(GP4M2-REG32) schedules changed: got {h:#018x}"
    );
}

#[test]
fn schedule_hash_is_stable_across_runs() {
    let machine = MachineConfig::paper_config(2, 32).unwrap();
    let wb = workbench();
    let sched = MirsScheduler::new(&machine, SchedulerOptions::default());
    let lp = &wb.loops()[0];
    let a = sched.schedule(lp).unwrap().schedule_hash();
    let b = sched.schedule(lp).unwrap().schedule_hash();
    assert_eq!(a, b, "same loop, same machine, same hash");
}

/// One `SchedScratch` reused across every loop (and every machine shape)
/// produces exactly the schedules fresh-scratch runs produce: warmed
/// buffers carry capacity, never state. This is the contract that lets the
/// sweep engine keep one scratch per worker.
#[test]
fn schedules_are_identical_with_a_reused_scratch() {
    let wb = workbench();
    let mut scratch = mirs::SchedScratch::new();
    for (k, regs) in [(1u32, 64u32), (2, 32), (4, 16)] {
        let machine = MachineConfig::paper_config(k, regs).unwrap();
        let sched = MirsScheduler::new(&machine, SchedulerOptions::default());
        for lp in wb.loops() {
            let fresh = sched.schedule(lp).expect("reference workbench converges");
            let reused = sched
                .schedule_with(lp, &mut scratch)
                .expect("reference workbench converges");
            assert_eq!(
                fresh.schedule_hash(),
                reused.schedule_hash(),
                "{}: scratch reuse changed the schedule of {}",
                machine.name(),
                lp.name
            );
            assert_eq!(fresh.ii, reused.ii);
            assert_eq!(fresh.max_live, reused.max_live);
            assert_eq!(fresh.stats.restarts, reused.stats.restarts);
        }
    }
}

/// Recorded from the seed (hash-map MRT) scheduler; the flat-MRT refactor
/// must reproduce these exactly.
const GOLDEN_1X64: u64 = 0xe16d_bd67_223a_565e;
const GOLDEN_2X32: u64 = 0xda8c_f0c2_9b3e_3938;
