//! Snapshot-codec round-trip and hostile-input properties, cross-crate.
//!
//! The codec layers (`vliw::snap`, `ddg::snap`, `mirs::snap`) each carry
//! unit tests next to their impls; this suite drives them end to end over
//! *random* inputs — synthetic loopgen loops, scheduled results, machine
//! shapes — and asserts the two global contracts:
//!
//! 1. decode(encode(x)) is content-identical to x (including id-allocation
//!    state, so a decoded graph keeps growing exactly like the original);
//! 2. corrupt blobs are rejected with a typed [`SnapError`], never a panic
//!    and never a silently-wrong value.

use ddg::snap::{decode_graph, decode_loop, encode_graph, encode_loop, loop_fingerprint};
use loopgen::{synthetic, SyntheticParams};
use mirs::snap::{decode_result, encode_result};
use mirs::{MirsScheduler, SchedulerOptions, SearchConfig};
use proptest::prelude::*;
use vliw::snap::{decode_machine, encode_machine, SnapError};
use vliw::{ClusterConfig, MachineConfig};

fn synthetic_loop(seed: u64, arith: usize, streams: usize, recurrences: usize) -> ddg::Loop {
    let params = SyntheticParams {
        arith_ops: arith,
        input_streams: streams,
        output_stores: 1,
        invariants: 1,
        recurrences,
        ..SyntheticParams::default()
    };
    synthetic::generate(&params, seed)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Any synthetic loop survives the `MLOP` round trip with identical
    /// content, identical fingerprint, and identical id-allocation state.
    #[test]
    fn loops_round_trip(
        seed in 0u64..1000,
        arith in 3usize..20,
        streams in 1usize..5,
        recurrences in 0usize..2,
    ) {
        let lp = synthetic_loop(seed, arith, streams, recurrences);
        let blob = encode_loop(&lp);
        let back = decode_loop(&blob).expect("own encoding decodes");
        prop_assert_eq!(&back.name, &lp.name);
        prop_assert_eq!(back.trip_count, lp.trip_count);
        prop_assert!(back.graph.same_content(&lp.graph));
        prop_assert_eq!(loop_fingerprint(&back), loop_fingerprint(&lp));
        // Canonical: encoding is a pure function of content.
        prop_assert_eq!(encode_loop(&back), blob);
    }

    /// A graph that lost nodes to spill/move churn round-trips with its
    /// tombstones, so decoded graphs allocate the same ids as the source.
    #[test]
    fn mutated_graphs_round_trip(seed in 0u64..500, kill in 0usize..4) {
        let mut lp = synthetic_loop(seed, 8, 2, 1);
        let victims: Vec<ddg::NodeId> = lp
            .graph
            .node_ids()
            .filter(|n| lp.graph.out_edges(*n).is_empty())
            .take(kill)
            .collect();
        for v in victims {
            lp.graph.remove_node(v);
        }
        let blob = encode_graph(&lp.graph);
        let back = decode_graph(&blob).expect("own encoding decodes");
        prop_assert!(back.same_content(&lp.graph));
    }

    /// Scheduled results round-trip with the exact `schedule_hash` — the
    /// integrity anchor of the persistent cache.
    #[test]
    fn schedule_results_round_trip(
        seed in 0u64..300,
        arith in 3usize..12,
        clusters_pow in 0u32..3,
    ) {
        let lp = synthetic_loop(seed, arith, 2, 0);
        let k = 1u32 << clusters_pow;
        let machine = MachineConfig::builder()
            .identical_clusters(k, ClusterConfig::new(8 / k, 4 / k, 32))
            .buses(2)
            .build()
            .unwrap();
        let result = MirsScheduler::new(&machine, SchedulerOptions::default())
            .schedule(&lp)
            .expect("synthetic loops converge");
        let blob = encode_result(&result);
        let back = decode_result(&blob).expect("own encoding decodes");
        prop_assert_eq!(back.schedule_hash(), result.schedule_hash());
        prop_assert_eq!(back.ii, result.ii);
        prop_assert_eq!(back.stats, result.stats);
        prop_assert!(back.graph.same_content(&result.graph));
        prop_assert!(back.validate(&machine).is_ok());
    }

    /// Machine configurations round-trip through `MMCH` blobs.
    #[test]
    fn machines_round_trip(clusters_pow in 0u32..3, regs_idx in 0usize..3, buses in 1u32..5) {
        let k = 1u32 << clusters_pow;
        let regs = [16u32, 32, 64][regs_idx];
        let machine = MachineConfig::builder()
            .identical_clusters(k, ClusterConfig::new(8 / k, 4 / k, regs))
            .buses(buses)
            .build()
            .unwrap();
        let back = decode_machine(&encode_machine(&machine)).expect("own encoding decodes");
        prop_assert_eq!(back.name(), machine.name());
        prop_assert_eq!(back.cluster_configs(), machine.cluster_configs());
        prop_assert_eq!(back.buses(), machine.buses());
    }

    /// Truncating a valid blob at *any* byte boundary yields a typed error
    /// — never a panic, never a bogus decoded value.
    #[test]
    fn every_truncation_is_rejected(seed in 0u64..200, cut_permille in 0usize..1000) {
        let lp = synthetic_loop(seed, 6, 2, 1);
        let blob = encode_loop(&lp);
        let cut = cut_permille * blob.len() / 1000;
        prop_assert!(cut < blob.len());
        prop_assert!(decode_loop(&blob[..cut]).is_err());
    }

    /// Flipping a single bit anywhere in a sealed blob is detected: either
    /// an envelope/payload error, or (for bits the codec does not read,
    /// e.g. unused high bytes that still feed the checksum) a checksum
    /// mismatch. A flipped blob must never decode to different content
    /// while claiming success with the same fingerprint... unless the flip
    /// is inside the checksum trailer itself, which also errors.
    #[test]
    fn every_bitflip_is_rejected(seed in 0u64..200, pos_permille in 0usize..1000, bit in 0u8..8) {
        let lp = synthetic_loop(seed, 6, 2, 0);
        let mut blob = encode_loop(&lp);
        let pos = pos_permille * blob.len() / 1000;
        blob[pos] ^= 1 << bit;
        prop_assert!(decode_loop(&blob).is_err(), "bit {bit} at byte {pos} slipped through");
    }
}

#[test]
fn hostile_envelopes_yield_typed_errors() {
    let lp = synthetic_loop(7, 6, 2, 1);
    let blob = encode_loop(&lp);

    // Wrong magic: a loop blob is not a graph blob.
    assert!(matches!(
        decode_graph(&blob),
        Err(SnapError::BadMagic { .. })
    ));

    // Unsupported format version.
    let mut v = blob.clone();
    v[4] = 0xff;
    assert!(matches!(
        decode_loop(&v),
        Err(SnapError::UnsupportedVersion { .. })
    ));

    // Flipped checksum byte.
    let mut c = blob.clone();
    let last = c.len() - 1;
    c[last] ^= 0xff;
    assert!(matches!(
        decode_loop(&c),
        Err(SnapError::ChecksumMismatch { .. })
    ));

    // Truncated header.
    assert!(matches!(
        decode_loop(&blob[..5]),
        Err(SnapError::Truncated { .. })
    ));

    // Trailing garbage after a valid blob.
    let mut t = blob.clone();
    t.extend_from_slice(b"junk");
    assert!(decode_loop(&t).is_err());

    // Empty input.
    assert!(decode_loop(&[]).is_err());
}

#[test]
fn cross_strategy_results_share_the_codec() {
    // The same loop scheduled under every strategy round-trips; decoded
    // results keep their strategy tag, which the cache's tier rule relies
    // on.
    let lp = synthetic_loop(11, 8, 2, 1);
    let machine = MachineConfig::paper_config(2, 32).unwrap();
    for search in [
        SearchConfig::default(),
        SearchConfig::backtracking(),
        SearchConfig::perturbed(),
        SearchConfig::exact(),
    ] {
        let result = MirsScheduler::new(&machine, SchedulerOptions::default().with_search(search))
            .schedule(&lp)
            .expect("schedulable");
        let back = decode_result(&encode_result(&result)).unwrap();
        assert_eq!(back.search.strategy, search.strategy);
        assert_eq!(back.schedule_hash(), result.schedule_hash());
        assert_eq!(
            back.search.proof, result.search.proof,
            "the optimality proof must survive the MRES round trip"
        );
        assert_eq!(back.certified_lower_bound(), result.certified_lower_bound());
    }
}

/// An exact result's proof is substantive after the round trip: the
/// decoded entry still certifies a bound no larger than its achieved II,
/// so a warm cache hit carries the same optimality evidence as the fresh
/// run that produced it.
#[test]
fn exact_proofs_round_trip_with_their_bounds() {
    let lp = synthetic_loop(23, 6, 2, 1);
    let machine = MachineConfig::paper_config(1, 64).unwrap();
    let result = MirsScheduler::new(
        &machine,
        SchedulerOptions::default().with_search(SearchConfig::exact()),
    )
    .schedule(&lp)
    .expect("schedulable");
    let lb = result.certified_lower_bound().expect("exact certifies");
    let back = decode_result(&encode_result(&result)).unwrap();
    assert_eq!(back.certified_lower_bound(), Some(lb));
    assert!(lb <= back.ii);
    // Canonical: the proof feeds the encoding deterministically.
    assert_eq!(encode_result(&back), encode_result(&result));
}
